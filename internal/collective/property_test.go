package collective

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestStepCountFormulas pins the closed-form phase counts: N−1 steps per
// ring pass, 2(N−1) for ring allreduce, log₂N rounds for the broadcast
// tree, each multiplied by the repeat count.
func TestStepCountFormulas(t *testing.T) {
	for _, name := range Names() {
		for _, nodes := range []int{2, 4, 8, 16, 64, 256} {
			for _, repeats := range []int{1, 3} {
				p, err := Generate(name, nodes, Config{Repeats: repeats})
				if err != nil {
					t.Fatalf("Generate(%s, %d): %v", name, nodes, err)
				}
				per, ok := Steps(name, nodes)
				if !ok {
					t.Fatalf("Steps(%s) unknown", name)
				}
				if got, want := len(p.Phases), per*repeats; got != want {
					t.Errorf("%s/%d x%d: %d phases, want %d", name, nodes, repeats, got, want)
				}
			}
		}
	}
}

// TestRingByteConservation verifies the allreduce bandwidth identity: with
// a buffer divisible by N, every node sends and receives exactly
// (N−1)/N · B per reduce-scatter or all-gather pass — so 2(N−1)/N · B for
// the full ring allreduce. The ring schedule is the bandwidth-optimal
// algorithm precisely because these totals meet the lower bound.
func TestRingByteConservation(t *testing.T) {
	passes := map[string]int{"reduce-scatter": 1, "all-gather": 1, "ring-allreduce": 2}
	for name, numPasses := range passes {
		for _, nodes := range []int{4, 8, 16} {
			chunk := 256
			cfg := Config{Repeats: 1, BufferBytes: chunk * nodes}
			p, err := Generate(name, nodes, cfg)
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", name, nodes, err)
			}
			sent := make([]int, nodes)
			recvd := make([]int, nodes)
			for _, m := range p.Messages {
				sent[m.Src] += m.Bytes
				recvd[m.Dst] += m.Bytes
			}
			want := numPasses * (nodes - 1) * chunk
			for i := 0; i < nodes; i++ {
				if sent[i] != want {
					t.Errorf("%s/%d: node %d sent %d bytes, want %d", name, nodes, i, sent[i], want)
				}
				if recvd[i] != want {
					t.Errorf("%s/%d: node %d received %d bytes, want %d", name, nodes, i, recvd[i], want)
				}
			}
		}
	}
}

// TestTreeBroadcastDelivery verifies the broadcast invariants: every
// non-root node receives the full buffer exactly once, the root receives
// nothing, and total traffic is (N−1)·B (each node informed by exactly one
// message).
func TestTreeBroadcastDelivery(t *testing.T) {
	for _, nodes := range []int{2, 8, 16, 64} {
		const buf = 4096
		p, err := Generate("tree-broadcast", nodes, Config{Repeats: 1, BufferBytes: buf})
		if err != nil {
			t.Fatalf("Generate(tree-broadcast, %d): %v", nodes, err)
		}
		recvd := make([]int, nodes)
		recvCount := make([]int, nodes)
		total := 0
		for _, m := range p.Messages {
			recvd[m.Dst] += m.Bytes
			recvCount[m.Dst]++
			total += m.Bytes
		}
		if recvd[0] != 0 {
			t.Errorf("N=%d: root received %d bytes, want 0", nodes, recvd[0])
		}
		for i := 1; i < nodes; i++ {
			if recvd[i] != buf || recvCount[i] != 1 {
				t.Errorf("N=%d: node %d received %d bytes in %d messages, want %d in 1",
					nodes, i, recvd[i], recvCount[i], buf)
			}
		}
		if want := (nodes - 1) * buf; total != want {
			t.Errorf("N=%d: total traffic %d bytes, want %d", nodes, total, want)
		}
	}
}

// TestPhasesArePermutations pins the well-behavedness of each synchronized
// step at the schedule level: within any phase, no node sends more than one
// message and no node receives more than one, and the broadcast rounds keep
// senders and receivers disjoint. This is the structural property that lets
// the synthesizer route every phase contention-free.
func TestPhasesArePermutations(t *testing.T) {
	for _, name := range Names() {
		for _, nodes := range []int{8, 16, 32} {
			p, err := Generate(name, nodes, Config{Repeats: 1})
			if err != nil {
				t.Fatalf("Generate(%s, %d): %v", name, nodes, err)
			}
			for pi, ph := range p.Phases {
				srcs := make(map[int]bool)
				dsts := make(map[int]bool)
				for _, mi := range ph.Messages {
					m := p.Messages[mi]
					if srcs[m.Src] {
						t.Errorf("%s/%d phase %d (%s): node %d sends twice", name, nodes, pi, ph.Label, m.Src)
					}
					if dsts[m.Dst] {
						t.Errorf("%s/%d phase %d (%s): node %d receives twice", name, nodes, pi, ph.Label, m.Dst)
					}
					srcs[m.Src] = true
					dsts[m.Dst] = true
				}
				if name == "tree-broadcast" {
					for s := range srcs {
						if dsts[s] {
							t.Errorf("%s/%d phase %d: node %d both sends and receives", name, nodes, pi, s)
						}
					}
				}
			}
		}
	}
}

// TestPhasesAreContentionPeriods checks the temporal side of
// well-behavedness. Consecutive phases never overlap, so each phase is one
// contention period — and because ContentionPeriods dedupes identical flow
// sets (Definition 5 collects *distinct* cliques), the whole collective
// collapses to a handful of periods: one for a ring collective (every step
// is the same successor permutation) and log₂N for the broadcast tree (one
// per round shape). This is the quantitative sense in which collectives are
// maximally well-behaved: the contention model the synthesizer must satisfy
// is constant-size no matter how many repeats the trace carries.
func TestPhasesAreContentionPeriods(t *testing.T) {
	const nodes = 16
	wantPeriods := map[string]int{
		"ring-allreduce": 1,
		"reduce-scatter": 1,
		"all-gather":     1,
		"tree-broadcast": 4, // log2(16)
	}
	for _, name := range Names() {
		p, err := Generate(name, nodes, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(p.Phases); i++ {
			if p.Phases[i].Start <= p.Phases[i-1].Finish {
				t.Errorf("%s: phase %d starts at %g, before phase %d finishes (%g)",
					name, i, p.Phases[i].Start, i-1, p.Phases[i-1].Finish)
			}
		}
		st := trace.Summarize(p)
		if st.Periods != wantPeriods[name] {
			t.Errorf("%s/%d: %d distinct contention periods, want %d", name, nodes, st.Periods, wantPeriods[name])
		}
	}
}

// TestNormalizedDefaults pins the documented Config defaults and that
// normalization is idempotent.
func TestNormalizedDefaults(t *testing.T) {
	n := Config{}.Normalized()
	if n.BufferBytes != 16384 || n.Repeats != 2 || n.ByteScale != 1 || n.ComputeScale != 1 {
		t.Errorf("Normalized zero config = %+v", n)
	}
	if n != n.Normalized() {
		t.Error("Normalized is not idempotent")
	}
	set := Config{BufferBytes: 64, Repeats: 1, ByteScale: 0.5, ComputeScale: 2}
	if got := set.Normalized(); got != set {
		t.Errorf("Normalized overwrote set fields: %+v", got)
	}
}

// TestGenerateTelemetry checks the collective.* counters land on an
// attached Observer with the documented values, and that the pattern's
// shape matches the ring formulas (2(N−1) phases of N messages).
func TestGenerateTelemetry(t *testing.T) {
	col := obs.NewCollector()
	p, err := Generate("ring-allreduce", 8, Config{Repeats: 1, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(p.Messages), 2*(8-1)*8; got != want {
		t.Fatalf("ring-allreduce.8 has %d messages, want %d", got, want)
	}
	if p.Name != fmt.Sprintf("ring-allreduce.%d", 8) {
		t.Errorf("pattern name %q", p.Name)
	}
	for name, want := range map[string]int64{
		"collective.patterns": 1,
		"collective.messages": int64(len(p.Messages)),
		"collective.phases":   int64(len(p.Phases)),
	} {
		if got := col.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
