package repro

// One benchmark per figure/table of the paper's evaluation, plus the
// ablations called out in DESIGN.md. Each benchmark runs the corresponding
// harness experiment and prints its table once, so
//
//	go test -bench=. -benchmem
//
// regenerates every reported result. Benchmarks use the Quick
// configuration (scaled-down payloads, identical phase structure) so the
// whole suite completes in minutes; cmd/paperfigs runs the full scale.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/harness"
)

var printOnce sync.Map

func printTable(key, table string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(table)
	}
}

func cfg() harness.Config { return harness.Quick() }

// BenchmarkFigure1Walkthrough reproduces the Section 3.4 design example:
// the Figure 1 contention periods, the Figure 2 cut colorings (4 and 3
// links), and the Figure 5 final network.
func BenchmarkFigure1Walkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := cfg().Walkthrough()
		if err != nil {
			b.Fatal(err)
		}
		if w.Cut1Links != 4 || w.Cut2Links != 3 {
			b.Fatalf("cut colorings %d/%d diverge from paper 4/3", w.Cut1Links, w.Cut2Links)
		}
		printTable("walkthrough", w.Render())
		b.ReportMetric(float64(w.Links), "links")
		b.ReportMetric(float64(w.Switches), "switches")
	}
}

// BenchmarkFig7aResources8 reproduces Figure 7(a): generated-network
// resources normalized to the mesh on the 8/9-node configurations.
func BenchmarkFig7aResources8(b *testing.B) {
	benchFig7(b, "small", "Figure 7(a): resources, 8/9-node configurations")
}

// BenchmarkFig7bResources16 reproduces Figure 7(b) (16-node
// configurations).
func BenchmarkFig7bResources16(b *testing.B) {
	benchFig7(b, "large", "Figure 7(b): resources, 16-node configurations")
}

func benchFig7(b *testing.B, size, title string) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().Figure7(size)
		if err != nil {
			b.Fatal(err)
		}
		printTable(title, harness.RenderResourceTable(title+" (normalized to mesh)", rows))
		var swSum, lnSum float64
		for _, r := range rows {
			swSum += r.SwitchRatio
			lnSum += r.LinkRatioMesh
		}
		b.ReportMetric(swSum/float64(len(rows)), "switch-ratio")
		b.ReportMetric(lnSum/float64(len(rows)), "link-ratio")
	}
}

// BenchmarkFig8aPerformance8 reproduces Figure 8(a): execution and
// communication time of mesh, torus, and generated networks normalized to
// the crossbar at 8/9 nodes.
func BenchmarkFig8aPerformance8(b *testing.B) {
	benchFig8(b, "small", "Figure 8(a): performance, 8/9-node configurations")
}

// BenchmarkFig8bPerformance16 reproduces Figure 8(b) (16 nodes), where the
// paper reports the generated network within 4% of the crossbar and up to
// 18% faster than the mesh on CG.
func BenchmarkFig8bPerformance16(b *testing.B) {
	benchFig8(b, "large", "Figure 8(b): performance, 16-node configurations")
}

func benchFig8(b *testing.B, size, title string) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().Figure8(size)
		if err != nil {
			b.Fatal(err)
		}
		printTable(title, harness.RenderPerfTable(title+" (normalized to crossbar)", rows))
		var genSum float64
		var genN int
		for _, r := range rows {
			if r.Topology == "generated" {
				genSum += r.ExecNorm
				genN++
			}
		}
		if genN > 0 {
			b.ReportMetric(genSum/float64(genN), "gen-exec-vs-xbar")
		}
	}
}

// BenchmarkSensitivityCrossPattern reproduces the Section 4.2 study: BT and
// FFT traces on the CG-generated network.
func BenchmarkSensitivityCrossPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().Sensitivity([]string{"BT", "FFT"}, 16)
		if err != nil {
			b.Fatal(err)
		}
		printTable("sensitivity", harness.RenderSensitivityTable(rows))
		for _, r := range rows {
			b.ReportMetric(r.Degradation, r.Benchmark+"-degradation")
		}
	}
}

// BenchmarkFastVsExactColoring quantifies Section 3.3's claim that
// Fast_Color is a close lower bound on the formal chromatic number, over
// every pipe of every generated network.
func BenchmarkFastVsExactColoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().ColoringQuality(nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("coloring", harness.RenderColoringQuality(rows))
		tight, pipes := 0, 0
		for _, r := range rows {
			tight += r.Tight
			pipes += r.Pipes
		}
		if pipes > 0 {
			b.ReportMetric(float64(tight)/float64(pipes), "tightness")
		}
	}
}

// BenchmarkAblationSynthesis compares the methodology's design choices
// (Best_Route, global refinement, exact final coloring, annealed moves) on
// CG-16.
func BenchmarkAblationSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().Ablations("CG", 16)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation", harness.RenderAblations(rows))
		for _, r := range rows {
			b.ReportMetric(float64(r.Links), r.Variant+"-links")
		}
	}
}

// BenchmarkSkewRobustness quantifies the Section 4 tradeoff: residual
// model-level contention (C ∩ R witnesses) when the trace is skewed but the
// network was designed skew-free.
func BenchmarkSkewRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().SkewRobustness("CG", 16, []float64{0, 0.5, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		printTable("skew", harness.RenderSkewTable("CG", rows))
		b.ReportMetric(float64(rows[len(rows)-1].Witnesses), "witnesses-at-max-skew")
	}
}

// BenchmarkMultiAppSynthesis evaluates the reconfigurable-workload
// extension: one network synthesized for CG and FFT together, verified
// contention-free for each, compared against two dedicated networks.
func BenchmarkMultiAppSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cfg().MultiApp([]string{"CG", "FFT"}, 16)
		if err != nil {
			b.Fatal(err)
		}
		printTable("multiapp", res.Render())
		b.ReportMetric(float64(res.MergedLinks), "shared-links")
		b.ReportMetric(float64(res.OwnLinks["CG"]+res.OwnLinks["FFT"]), "separate-links")
	}
}

// BenchmarkScalingSweep tracks resource savings as the system grows toward
// the "high tens of cores" the paper's introduction projects.
func BenchmarkScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := cfg().Scaling("CG", []int{8, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
		printTable("scaling", harness.RenderScaling("CG", rows))
		last := rows[len(rows)-1]
		b.ReportMetric(last.SwitchRatio, "switch-ratio-32")
	}
}

// BenchmarkHarnessParallel measures the end-to-end experiment fan-out: the
// full Figure 7 large panel (five benchmark cells, each with its own
// synthesis and floorplan) at 1 and 4 workers. The rows are identical at
// every worker count; only wall-clock changes, so BENCH_*.json comparisons
// across PRs track the speedup directly.
func BenchmarkHarnessParallel(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c := cfg()
			c.Workers = w
			for i := 0; i < b.N; i++ {
				rows, err := c.Figure7("large")
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 5 {
					b.Fatalf("got %d rows", len(rows))
				}
			}
		})
	}
}
