# Tier-1 verification gate (see README.md): vet, build, the full suite
# under the race detector, and the determinism suite twice — the second
# -count exercises fresh goroutine schedules so an order-dependent
# reduction cannot pass by luck.
GO ?= go

.PHONY: verify vet build test race determinism bench bench-all fuzz

verify: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism -count=2 ./...

# bench runs the synthesis hot-path benchmarks with allocation stats and
# writes BENCH_synth.json (a machine-readable summary) plus BENCH_synth.txt
# (the raw benchstat-compatible text).
bench:
	$(GO) test -run '^$$' -bench 'Synthesize|FastColor|Coloring|ContentionPeriods|MaxClique' -benchmem \
		./internal/synth ./internal/coloring ./internal/model \
		| $(GO) run ./cmd/benchjson -o BENCH_synth.json -raw BENCH_synth.txt

bench-all:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseTrace -fuzztime 30s ./internal/trace
