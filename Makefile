# Tier-1 verification gate (see README.md): vet, build, the full suite
# under the race detector, and the determinism suite twice — the second
# -count exercises fresh goroutine schedules so an order-dependent
# reduction cannot pass by luck.
GO ?= go

.PHONY: verify vet build test race determinism fleet cover-serve cover-collective cover-hier bench bench-synth bench-obs bench-flitsim bench-warm perf-synth bench-all fuzz

verify: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestDeterminism -count=2 ./...

# fleet is the design-fleet gate: the multi-replica e2e suite (consistent-
# hash sharding, forwarding, owner-down fallback, loop protection), the
# disk-store crash-safety suite, and the batch/lane/v1-surface tests, all
# under the race detector.
fleet:
	$(GO) test -race -count=1 -run 'TestFleet|TestPeerRing|TestDiskStore|TestBatch|TestBulk|TestV1|TestErrorEnvelope|TestLane|TestMemStore' ./internal/serve/

# cover-serve is the server coverage gate: the design server's e2e suite
# (plus the synth cancellation tests it depends on) must keep internal/serve
# at >= 80% line coverage. Writes COVER_serve.txt (the per-function
# breakdown) for the CI artifact.
cover-serve:
	$(GO) test -count=1 -coverprofile=cover_serve.out ./internal/serve/
	$(GO) tool cover -func=cover_serve.out | tee COVER_serve.txt
	@total=$$($(GO) tool cover -func=cover_serve.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/serve line coverage: $$total% (floor 80%)"; \
	awk "BEGIN {exit !($$total >= 80.0)}" || { echo "FAIL: coverage $$total% below the 80% floor"; exit 1; }

# cover-collective is the collective-generator coverage gate: the golden,
# property, error, and determinism suites must keep internal/collective at
# >= 85% line coverage. Writes COVER_collective.txt for the CI artifact.
cover-collective:
	$(GO) test -count=1 -coverprofile=cover_collective.out ./internal/collective/
	$(GO) tool cover -func=cover_collective.out | tee COVER_collective.txt
	@total=$$($(GO) tool cover -func=cover_collective.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/collective line coverage: $$total% (floor 85%)"; \
	awk "BEGIN {exit !($$total >= 85.0)}" || { echo "FAIL: coverage $$total% below the 85% floor"; exit 1; }

# cover-hier is the two-level chiplet coverage gate: the spec/partition/
# split suites, the golden designs, the flatten/replay tests, and the
# determinism pins must keep internal/hier at >= 85% line coverage. Writes
# COVER_hier.txt for the CI artifact.
cover-hier:
	$(GO) test -count=1 -coverprofile=cover_hier.out ./internal/hier/
	$(GO) tool cover -func=cover_hier.out | tee COVER_hier.txt
	@total=$$($(GO) tool cover -func=cover_hier.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/hier line coverage: $$total% (floor 85%)"; \
	awk "BEGIN {exit !($$total >= 85.0)}" || { echo "FAIL: coverage $$total% below the 85% floor"; exit 1; }

# bench-synth runs the synthesis hot-path benchmarks with allocation stats
# and writes BENCH_synth.json (a machine-readable summary) plus
# BENCH_synth.txt (the raw benchstat-compatible text).
bench-synth:
	$(GO) test -run '^$$' -bench 'Synthesize|FastColor|Coloring|ContentionPeriods|MaxClique' -benchmem \
		./internal/synth ./internal/coloring ./internal/model \
		| $(GO) run ./cmd/benchjson -o BENCH_synth.json -raw BENCH_synth.txt

# bench-obs is the telemetry overhead gate: it re-runs the synthesis
# benchmark (Observer unset, i.e. the nil fast path) together with the
# Observer microbenchmarks and fails if SynthesizeCG16 is more than 2%
# slower than the BENCH_synth.json baseline. Run it standalone to compare
# against the committed baseline, or via `make bench` to compare against a
# fresh same-machine bench-synth run.
# (SynthesizeCG16 is anchored so the reference-engine twin stays out: that
# benchmark exists for the perf-synth ratio gate, not the 2% obs budget.)
bench-obs:
	$(GO) test -run '^$$' -bench 'SynthesizeCG16$$|Observer' -benchmem \
		./internal/synth ./internal/obs \
		| $(GO) run ./cmd/benchjson -o BENCH_obs.json -raw BENCH_obs.txt \
			-baseline BENCH_synth.json -budget 2

# bench-flitsim is the simulator-engine speedup gate: it runs the flitsim
# benchmarks (the compute-gap-heavy CG pair plus the mesh/torus/crossbar
# workloads), writes BENCH_flitsim.json/.txt, and fails unless the
# event-driven engine beats the cycle-stepping reference by >= 10x on the
# gap-heavy trace. Both engines run in the same invocation on the same
# machine, so the ratio gate needs no committed baseline to be meaningful;
# the -baseline annotation (when BENCH_flitsim.json exists) additionally
# flags absolute ns/op regressions over 25%.
bench-flitsim:
	$(GO) test -run '^$$' -bench 'Simulate|Simulation' -benchmem ./internal/flitsim \
		| $(GO) run ./cmd/benchjson -o BENCH_flitsim.json -raw BENCH_flitsim.txt \
			-ratio 'BenchmarkSimulateCG16GapMeshReference:BenchmarkSimulateCG16GapMesh' -min-ratio 10 \
			$(if $(wildcard BENCH_flitsim.json),-baseline BENCH_flitsim.json -budget 25)

# bench-warm is the warm-start speedup gate: it runs the warm-start sweep
# benchmark pair (the same five CG-16 variants synthesized cold and seeded
# from a prior design), writes BENCH_warm.json/.txt, and fails unless the
# seeded path beats cold synthesis by >= 5x. Both sides run in the same
# invocation on the same machine, so the ratio gate needs no committed
# baseline; the -baseline annotation (when BENCH_warm.json exists)
# additionally flags absolute ns/op regressions over 25%.
bench-warm:
	$(GO) test -run '^$$' -bench 'WarmStartSweep' -benchmem ./internal/synth \
		| $(GO) run ./cmd/benchjson -o BENCH_warm.json -raw BENCH_warm.txt \
			-ratio 'BenchmarkWarmStartSweepCold:BenchmarkWarmStartSweepSeeded' -min-ratio 5 \
			$(if $(wildcard BENCH_warm.json),-baseline BENCH_warm.json -budget 25)

# perf-synth is the move-engine speedup gate: it runs the synthesis
# benchmarks together with their retained reference-engine twins
# (Options.ReferenceMoveEngine, the pre-incremental closure/alloc path the
# equivalence suite pins byte-identical) and fails unless the incremental
# engine wins by >= 2x ns/op and >= 5x allocs/op on both workloads. Both
# engines run in the same invocation on the same machine, so the ratio
# gate needs no committed baseline to be meaningful.
perf-synth:
	$(GO) test -run '^$$' -bench 'Synthesize(Figure1|CG16)(Reference)?$$' -benchtime 2s -benchmem \
		./internal/synth \
		| $(GO) run ./cmd/benchjson -o BENCH_perf_synth.json -raw BENCH_perf_synth.txt \
			-ratio 'BenchmarkSynthesizeFigure1Reference:BenchmarkSynthesizeFigure1' \
			-ratio 'BenchmarkSynthesizeCG16Reference:BenchmarkSynthesizeCG16' \
			-min-ratio 2 -min-alloc-ratio 5

bench: bench-synth bench-obs bench-flitsim bench-warm

bench-all:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseTrace -fuzztime 30s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzFingerprint -fuzztime 30s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzCollectiveConfig -fuzztime 30s ./internal/collective
	$(GO) test -run '^$$' -fuzz FuzzPartition -fuzztime 30s ./internal/hier
