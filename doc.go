// Package repro is a full reproduction of Ho & Pinkston, "A Methodology for
// Designing Efficient On-Chip Interconnects on Well-Behaved Communication
// Patterns" (HPCA 2003): a temporal/spatial contention model, a
// recursive-bisection topology synthesizer, a flit-level network simulator,
// a RAW-style tile floorplanner, synthetic NAS-benchmark workloads, and a
// harness that regenerates every figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for measured-vs-paper results. The
// benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=. -benchmem
package repro
